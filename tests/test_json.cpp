// Shared JSON plumbing (common/json.hpp): the escaping and number
// formatting every exporter relies on for the determinism contract, and
// the matching reader — key-order preservation, \uXXXX handling, and
// trailing-garbage rejection, all of which the ledger/diff/html tests
// build on.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

namespace irmc {
namespace {

TEST(Escape, ControlQuoteAndBackslash) {
  EXPECT_EQ(json::Escape("plain ascii"), "plain ascii");
  EXPECT_EQ(json::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::Escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::Escape("a\nb\tc"), "a\\nb\\tc");
  // Other C0 controls take the \u00xx form.
  EXPECT_EQ(json::Escape(std::string("a\x01") + "b"), "a\\u0001b");
  EXPECT_EQ(json::Escape(std::string(1, '\x1f')), "\\u001f");
  // Str wraps with quotes.
  EXPECT_EQ(json::Str("x\"y"), "\"x\\\"y\"");
}

TEST(Num, IntegersAreExactAndDoublesRoundTrip) {
  EXPECT_EQ(json::Num(std::int64_t{0}), "0");
  EXPECT_EQ(json::Num(std::int64_t{-7}), "-7");
  EXPECT_EQ(json::Num(std::int64_t{9007199254740993LL}), "9007199254740993");
  // %.17g round-trips any double exactly through strtod.
  for (double v : {0.1, 1.0 / 3.0, 3.141592653589793, -2.5e-17, 1e300}) {
    const std::string s = json::Num(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }
  EXPECT_EQ(json::Num(0.3), "0.29999999999999999");
}

TEST(Parse, RoundTripsObjectsPreservingKeyOrder) {
  const std::string text =
      "{\"zeta\":1,\"alpha\":[true,false,null,\"s\"],\"mid\":{\"k\":-2.5}}";
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::Parse(text, &v, &error)) << error;
  ASSERT_TRUE(v.IsObject());
  // Writer-emitted order survives (our writers sort; the parser must
  // not re-sort behind their back).
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "zeta");
  EXPECT_EQ(v.object[1].first, "alpha");
  EXPECT_EQ(v.object[2].first, "mid");
  const json::Value* arr = v.Find("alpha");
  ASSERT_NE(arr, nullptr);
  ASSERT_TRUE(arr->IsArray());
  ASSERT_EQ(arr->array.size(), 4u);
  EXPECT_TRUE(arr->array[0].boolean);
  EXPECT_EQ(arr->array[2].kind, json::Value::Kind::kNull);
  EXPECT_EQ(arr->array[3].StringOr(""), "s");
  EXPECT_EQ(v.Find("mid")->NumAt("k", 0.0), -2.5);
  EXPECT_EQ(v.NumAt("zeta", 0.0), 1.0);
  EXPECT_EQ(v.NumAt("absent", 42.0), 42.0);
}

TEST(Parse, EscapesDecodeIncludingUnicode) {
  json::Value v;
  std::string error;
  ASSERT_TRUE(json::Parse("\"a\\n\\t\\\\\\\"\\u0041\\u00e9\"", &v, &error))
      << error;
  // A = 'A'; é = é as two UTF-8 bytes.
  EXPECT_EQ(v.StringOr(""), std::string("a\n\t\\\"A\xc3\xa9"));
  // An escaped control character round-trips through Escape+Parse.
  const std::string original = "line1\nline2\x01end";
  std::string quoted = "\"";  // two steps: GCC 12 -Wrestrict FP
  quoted += json::Escape(original);
  quoted += '"';
  json::Value round;
  ASSERT_TRUE(json::Parse(quoted, &round, &error)) << error;
  EXPECT_EQ(round.StringOr(""), original);
}

TEST(Parse, RejectsMalformedInputWithOffset) {
  json::Value v;
  std::string error;
  // Trailing garbage after a complete document.
  EXPECT_FALSE(json::Parse("{\"a\":1} extra", &v, &error));
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
  EXPECT_FALSE(json::Parse("{\"a\":}", &v, &error));
  EXPECT_FALSE(json::Parse("{\"a\" 1}", &v, &error));
  EXPECT_FALSE(json::Parse("[1,2", &v, &error));
  EXPECT_FALSE(json::Parse("\"unterminated", &v, &error));
  EXPECT_FALSE(json::Parse("\"bad \\u00zz escape\"", &v, &error));
  EXPECT_FALSE(json::Parse("nope", &v, &error));
  EXPECT_FALSE(json::Parse("", &v, &error));
}

}  // namespace
}  // namespace irmc
