#include "core/load_runner.hpp"

#include <gtest/gtest.h>

namespace irmc {
namespace {

LoadRunSpec QuickSpec(SchemeKind scheme, double load) {
  LoadRunSpec spec;
  spec.scheme = scheme;
  spec.degree = 8;
  spec.effective_load = load;
  spec.warmup = 5'000;
  spec.horizon = 60'000;
  spec.topologies = 2;
  return spec;
}

TEST(LoadRunner, LightLoadCompletesEverything) {
  const auto r = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, 0.05));
  EXPECT_GT(r.completed, 0);
  EXPECT_FALSE(r.saturated);
  EXPECT_EQ(r.unfinished, 0);
  EXPECT_GT(r.mean_latency, 0.0);
  EXPECT_LE(r.p50_latency, r.p95_latency);
}

TEST(LoadRunner, Deterministic) {
  const auto a = RunLoadSweepPoint(QuickSpec(SchemeKind::kNiKBinomial, 0.1));
  const auto b = RunLoadSweepPoint(QuickSpec(SchemeKind::kNiKBinomial, 0.1));
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
}

TEST(LoadRunner, LatencyRisesWithLoad) {
  const auto low = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, 0.05));
  const auto high = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, 0.4));
  EXPECT_GT(high.mean_latency, low.mean_latency);
}

TEST(LoadRunner, OverloadSaturates) {
  // Far beyond link capacity: the run must flag saturation rather than
  // hang or crash.
  const auto r =
      RunLoadSweepPoint(QuickSpec(SchemeKind::kUnicastBinomial, 3.0));
  EXPECT_TRUE(r.saturated);
}

TEST(LoadRunner, HigherLoadGeneratesMoreTraffic) {
  const auto low = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, 0.05));
  const auto high = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, 0.2));
  EXPECT_GT(high.completed + high.unfinished,
            low.completed + low.unfinished);
}

TEST(LoadRunner, TreeWormSustainsMoreLoadThanBaseline) {
  // The software binomial baseline saturates far earlier (paper
  // Section 4.3): at a moderate load the baseline is saturated or far
  // slower while the tree worm cruises.
  const double load = 0.5;
  const auto tree = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, load));
  const auto base =
      RunLoadSweepPoint(QuickSpec(SchemeKind::kUnicastBinomial, load));
  EXPECT_FALSE(tree.saturated);
  EXPECT_TRUE(base.saturated || base.mean_latency > 2 * tree.mean_latency);
}


TEST(LoadRunner, ThroughputMatchesOfferedBelowSaturation) {
  const auto r = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, 0.1));
  ASSERT_FALSE(r.saturated);
  // Open-loop generation: delivered payload tracks the offered load
  // within sampling noise.
  EXPECT_NEAR(r.achieved_throughput, 0.1, 0.02);
}

TEST(LoadRunner, ThroughputCapsAtSaturation) {
  const auto r =
      RunLoadSweepPoint(QuickSpec(SchemeKind::kUnicastBinomial, 3.0));
  EXPECT_TRUE(r.saturated);
  EXPECT_LT(r.achieved_throughput, 3.0 * 0.5);
}

TEST(LoadRunner, LinkUtilizationGrowsWithLoad) {
  const auto low = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, 0.05));
  const auto high = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, 0.3));
  EXPECT_GT(low.max_link_utilization, 0.0);
  EXPECT_LE(high.max_link_utilization, 1.0);
  EXPECT_GT(high.max_link_utilization, low.max_link_utilization);
}

TEST(LoadRunner, SoftwareSchemesInjectMoreTrafficThanTreeWorm) {
  // Same offered multicast load: the NI scheme injects one copy per
  // destination, the tree worm one copy total, so the hottest link works
  // harder under the NI scheme.
  const double load = 0.15;
  const auto tree = RunLoadSweepPoint(QuickSpec(SchemeKind::kTreeWorm, load));
  const auto ni =
      RunLoadSweepPoint(QuickSpec(SchemeKind::kNiKBinomial, load));
  EXPECT_GT(ni.max_link_utilization, tree.max_link_utilization);
}


TEST(LoadRunner, ClusteredPatternCompletes) {
  auto spec = QuickSpec(SchemeKind::kTreeWorm, 0.1);
  spec.pattern = DestPattern::kClustered;
  const auto r = RunLoadSweepPoint(spec);
  EXPECT_GT(r.completed, 0);
  EXPECT_FALSE(r.saturated);
}

TEST(LoadRunner, ClusteredIsFasterThanUniformForPathWorms) {
  // Clustered destination sets span fewer switches, so the multi-phase
  // path scheme needs fewer worms: lower latency at equal load.
  auto uniform = QuickSpec(SchemeKind::kPathWorm, 0.1);
  auto clustered = uniform;
  clustered.pattern = DestPattern::kClustered;
  const auto u = RunLoadSweepPoint(uniform);
  const auto c = RunLoadSweepPoint(clustered);
  EXPECT_LT(c.mean_latency, u.mean_latency);
}

TEST(LoadRunner, HotspotConcentratesLoad) {
  // Hotspot traffic hammers the popular nodes' hosts: latency exceeds
  // uniform at the same offered load.
  auto uniform = QuickSpec(SchemeKind::kTreeWorm, 0.15);
  auto hotspot = uniform;
  hotspot.pattern = DestPattern::kHotspot;
  const auto u = RunLoadSweepPoint(uniform);
  const auto h = RunLoadSweepPoint(hotspot);
  EXPECT_GT(h.mean_latency, u.mean_latency);
}

TEST(LoadRunner, PatternNamesDistinct) {
  EXPECT_STRNE(ToString(DestPattern::kUniform),
               ToString(DestPattern::kClustered));
  EXPECT_STRNE(ToString(DestPattern::kClustered),
               ToString(DestPattern::kHotspot));
}

}  // namespace
}  // namespace irmc
