// Cross-module integration and paper-level property tests.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/executor.hpp"
#include "core/single_runner.hpp"
#include "mcast/scheme.hpp"
#include "topology/system.hpp"

namespace irmc {
namespace {

struct Case {
  SchemeKind scheme;
  std::uint64_t seed;
};

class EndToEnd : public ::testing::TestWithParam<Case> {};

TEST_P(EndToEnd, ExactlyOnceDeliveryOnRandomTopologyAndSet) {
  const auto [kind, seed] = GetParam();
  TopologySpec spec;
  spec.num_switches = 16;
  spec.num_hosts = 32;
  const auto sys = System::Build(spec, seed);
  SimConfig cfg;
  cfg.topology = spec;

  Rng rng(seed * 31 + 7);
  for (int trial = 0; trial < 3; ++trial) {
    const int degree = 2 + static_cast<int>(rng.NextBelow(20));
    auto draw = rng.SampleWithoutReplacement(32, degree + 1);
    const NodeId src = static_cast<NodeId>(draw[0]);
    std::vector<NodeId> dests(draw.begin() + 1, draw.end());
    std::vector<NodeId> node_dests;
    for (auto d : dests) node_dests.push_back(static_cast<NodeId>(d));

    const auto scheme = MakeScheme(kind, cfg.host);
    const auto r = PlayOnce(
        *sys, cfg,
        scheme->Plan(*sys, src, node_dests, cfg.message, cfg.headers));
    std::set<NodeId> got;
    for (const auto& [n, t] : r.deliveries) EXPECT_TRUE(got.insert(n).second);
    EXPECT_EQ(got, std::set<NodeId>(node_dests.begin(), node_dests.end()));
  }
}

TEST_P(EndToEnd, AllRoutesLegalUnderRecordedExecution) {
  const auto [kind, seed] = GetParam();
  const auto sys = System::Build({}, seed);
  SimConfig cfg;
  cfg.net.record_routes = true;

  Engine engine;
  McastDriver driver(engine, *sys, cfg);
  const auto scheme = MakeScheme(kind, cfg.host);
  std::vector<NodeId> dests{2, 5, 9, 13, 21, 27, 30};
  driver.Launch(scheme->Plan(*sys, 0, dests, cfg.message, cfg.headers), 0,
                [](const MulticastResult&) {});
  engine.RunToQuiescence();
  // Legality is enforced inside the fabric (NextPhase aborts on a
  // down->up move); reaching quiescence with all deliveries implies
  // every hop was legal. This test additionally guards against hangs.
  SUCCEED();
}

std::vector<Case> AllCases() {
  std::vector<Case> cases;
  for (SchemeKind k :
       {SchemeKind::kUnicastBinomial, SchemeKind::kNiKBinomial,
        SchemeKind::kTreeWorm, SchemeKind::kPathWorm})
    for (std::uint64_t seed : {1u, 2u, 3u, 4u}) cases.push_back({k, seed});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EndToEnd, ::testing::ValuesIn(AllCases()),
    [](const auto& info) {
      return std::string(ToIdent(info.param.scheme)) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(Integration, HeavyConcurrentTrafficMakesProgress) {
  // Deadlock-freedom smoke test: every node multicasts simultaneously;
  // the system must drain to quiescence with all deliveries made.
  const auto sys = System::Build({}, 77);
  SimConfig cfg;
  Engine engine;
  McastDriver driver(engine, *sys, cfg);
  int done = 0;
  for (NodeId src = 0; src < sys->num_nodes(); ++src) {
    std::vector<NodeId> dests;
    for (int i = 1; i <= 8; ++i)
      dests.push_back(static_cast<NodeId>((src + i * 3) % 32));
    // Remove accidental self.
    std::vector<NodeId> clean;
    std::set<NodeId> dedupe;
    for (NodeId d : dests)
      if (d != src && dedupe.insert(d).second) clean.push_back(d);
    const SchemeKind kind = static_cast<SchemeKind>(src % 4);
    const auto scheme = MakeScheme(kind, cfg.host);
    driver.Launch(scheme->Plan(*sys, src, clean, cfg.message, cfg.headers),
                  src, [&done](const MulticastResult&) { ++done; });
  }
  const bool drained = engine.RunUntil(3'000'000);
  EXPECT_TRUE(drained);
  EXPECT_EQ(done, 32);
}

TEST(Integration, PaperHeadlineRSweepCrossover) {
  // The paper's central finding (Section 4.2.1): as R = o_host/o_ni
  // grows, the NI-based scheme overtakes the path-based scheme; at
  // R = 0.5 the path-based scheme wins.
  SingleRunSpec spec;
  spec.multicast_size = 15;
  spec.topologies = 5;
  spec.samples_per_topology = 3;

  auto mean = [&](SchemeKind k, double ratio) {
    SingleRunSpec s = spec;
    s.scheme = k;
    s.cfg.host.SetRatio(ratio);
    return RunSingleMulticast(s).mean_latency;
  };
  // R = 4: NI clearly better than path-based.
  EXPECT_LT(mean(SchemeKind::kNiKBinomial, 4.0),
            mean(SchemeKind::kPathWorm, 4.0));
  // R = 0.5: path-based better than NI.
  EXPECT_LT(mean(SchemeKind::kPathWorm, 0.5),
            mean(SchemeKind::kNiKBinomial, 0.5));
  // Tree worm best at both extremes.
  EXPECT_LT(mean(SchemeKind::kTreeWorm, 4.0),
            mean(SchemeKind::kNiKBinomial, 4.0));
  EXPECT_LT(mean(SchemeKind::kTreeWorm, 0.5),
            mean(SchemeKind::kPathWorm, 0.5));
}

TEST(Integration, SchemeChoiceMatchesPaperConclusions) {
  // The paper's concluding rule: the path-based scheme wins for small R
  // and for multicasts with fewer packets; in the other cases the
  // NI-based scheme wins. At our calibration the R crossover falls
  // between 1 and 2 (the paper's text places it at "less than" a
  // one-digit threshold), and at R >= 2 the NI scheme holds its lead
  // through multi-packet messages.
  SingleRunSpec spec;
  spec.multicast_size = 15;
  spec.topologies = 5;
  spec.samples_per_topology = 3;
  auto mean = [&](SchemeKind k, double ratio, int packets) {
    SingleRunSpec s = spec;
    s.scheme = k;
    s.cfg.host.SetRatio(ratio);
    s.cfg.message.num_packets = packets;
    return RunSingleMulticast(s).mean_latency;
  };
  // Default R = 1, single packet: path-based wins.
  EXPECT_LT(mean(SchemeKind::kPathWorm, 1.0, 1),
            mean(SchemeKind::kNiKBinomial, 1.0, 1));
  // R = 4: NI-based wins through 4-packet messages.
  for (int m : {1, 2, 4})
    EXPECT_LT(mean(SchemeKind::kNiKBinomial, 4.0, m),
              mean(SchemeKind::kPathWorm, 4.0, m))
        << "packets=" << m;
}

TEST(Integration, SwitchCountHurtsPathWormOnly) {
  // Section 4.2.2: more switches (same node count) degrade the
  // path-based scheme; tree and NI stay roughly flat.
  auto mean = [&](SchemeKind k, int switches) {
    SingleRunSpec s;
    s.scheme = k;
    s.multicast_size = 15;
    s.topologies = 5;
    s.samples_per_topology = 3;
    s.cfg.topology.num_switches = switches;
    return RunSingleMulticast(s).mean_latency;
  };
  const double path_growth =
      mean(SchemeKind::kPathWorm, 32) / mean(SchemeKind::kPathWorm, 8);
  const double tree_growth =
      mean(SchemeKind::kTreeWorm, 32) / mean(SchemeKind::kTreeWorm, 8);
  EXPECT_GT(path_growth, 1.1);
  EXPECT_LT(tree_growth, path_growth);
}

}  // namespace
}  // namespace irmc
