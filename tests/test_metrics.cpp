// Metrics subsystem: histogram bin edges, merge associativity, export
// formats, and the determinism contract — a metrics-enabled parallel
// sweep must serialise to byte-identical JSON for any IRMC_THREADS.
#include "metrics/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/build_info.hpp"
#include "core/load_runner.hpp"
#include "core/parallel.hpp"
#include "core/single_runner.hpp"
#include "metrics/export.hpp"
#include "workloads/dsm.hpp"

namespace irmc {
namespace {

/// Restores the environment/default thread resolution on scope exit.
struct ThreadsGuard {
  ~ThreadsGuard() { SetParallelThreads(0); }
};

TEST(Counter, AddsAndDefaults) {
  Counter c;
  EXPECT_EQ(c.value, 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value, 42);
}

TEST(Histogram, BinEdges) {
  // Bin 0: v <= 0. Bin b >= 1: [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::BinOf(-5), 0);
  EXPECT_EQ(Histogram::BinOf(0), 0);
  EXPECT_EQ(Histogram::BinOf(1), 1);
  EXPECT_EQ(Histogram::BinOf(2), 2);
  EXPECT_EQ(Histogram::BinOf(3), 2);
  EXPECT_EQ(Histogram::BinOf(4), 3);
  EXPECT_EQ(Histogram::BinOf(7), 3);
  EXPECT_EQ(Histogram::BinOf(8), 4);
  EXPECT_EQ(Histogram::BinOf(1023), 10);
  EXPECT_EQ(Histogram::BinOf(1024), 11);

  for (int b = 1; b < Histogram::kBins - 1; ++b) {
    // Every bin's edges are self-consistent: the lower edge lands in the
    // bin, the value just below the upper edge lands in the bin, and the
    // upper edge itself lands in the next.
    EXPECT_EQ(Histogram::BinOf(Histogram::BinLower(b)), b) << b;
    EXPECT_EQ(Histogram::BinOf(Histogram::BinUpper(b) - 1), b) << b;
    EXPECT_EQ(Histogram::BinOf(Histogram::BinUpper(b)), b + 1) << b;
  }
  EXPECT_EQ(Histogram::BinLower(0), 0);
  EXPECT_EQ(Histogram::BinLower(1), 1);
  EXPECT_EQ(Histogram::BinLower(2), 2);
  EXPECT_EQ(Histogram::BinLower(3), 4);
  EXPECT_EQ(Histogram::BinUpper(3), 8);
}

TEST(Histogram, TracksCountSumMinMax) {
  Histogram h;
  for (std::int64_t v : {5, 1, 9, 9, 0}) h.Add(v);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 24);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 9);
  EXPECT_DOUBLE_EQ(h.Mean(), 24.0 / 5.0);
  EXPECT_EQ(h.bin(0), 1);  // the 0
  EXPECT_EQ(h.bin(1), 1);  // the 1
  EXPECT_EQ(h.bin(3), 1);  // the 5
  EXPECT_EQ(h.bin(4), 2);  // the two 9s
}

TEST(Gauge, ModesCombine) {
  Gauge mx{0.0, false, GaugeMode::kMax};
  mx.Set(2.0);
  mx.Set(1.0);
  EXPECT_DOUBLE_EQ(mx.value, 2.0);
  Gauge mn{0.0, false, GaugeMode::kMin};
  mn.Set(2.0);
  mn.Set(1.0);
  EXPECT_DOUBLE_EQ(mn.value, 1.0);
  Gauge sm{0.0, false, GaugeMode::kSum};
  sm.Set(2.0);
  sm.Set(1.0);
  EXPECT_DOUBLE_EQ(sm.value, 3.0);
}

TEST(Gauge, MergeIgnoresUnsetSides) {
  Gauge a{0.0, false, GaugeMode::kMax};
  Gauge b{7.0, true, GaugeMode::kMax};
  a.Merge(b);
  EXPECT_TRUE(a.set);
  EXPECT_DOUBLE_EQ(a.value, 7.0);
  Gauge untouched{0.0, false, GaugeMode::kMax};
  a.Merge(untouched);
  EXPECT_DOUBLE_EQ(a.value, 7.0);
}

/// Builds a registry with all three metric kinds from a small seed.
MetricsRegistry MakeRegistry(std::int64_t seed) {
  MetricsRegistry reg;
  reg.GetCounter("c.alpha").Add(seed);
  reg.GetCounter("c.beta").Add(seed * 3 + 1);
  reg.GetGauge("g.max", GaugeMode::kMax).Set(static_cast<double>(seed % 7));
  reg.GetGauge("g.sum", GaugeMode::kSum).Set(static_cast<double>(seed));
  Histogram& h = reg.GetHistogram("h.lat");
  for (std::int64_t v = 0; v < seed % 50 + 3; ++v) h.Add(v * seed % 1000);
  return reg;
}

TEST(MetricsRegistry, MergeIsAssociative) {
  // (a + b) + c == a + (b + c), byte-for-byte in every export format.
  const MetricsRegistry a = MakeRegistry(11);
  const MetricsRegistry b = MakeRegistry(29);
  const MetricsRegistry c = MakeRegistry(97);

  MetricsRegistry left = a;   // (a+b)+c
  left.Merge(b);
  left.Merge(c);
  MetricsRegistry bc = b;     // a+(b+c)
  bc.Merge(c);
  MetricsRegistry right = a;
  right.Merge(bc);

  EXPECT_EQ(ToJson(left), ToJson(right));
  EXPECT_EQ(ToJsonLines(left), ToJsonLines(right));
  EXPECT_EQ(ToCsv(left), ToCsv(right));
}

TEST(MetricsRegistry, MergeAddsCountersAndBins) {
  MetricsRegistry a = MakeRegistry(5);
  const MetricsRegistry b = MakeRegistry(5);
  a.Merge(b);
  EXPECT_EQ(a.counters().at("c.alpha").value, 10);
  EXPECT_EQ(a.histograms().at("h.lat").count(),
            2 * b.histograms().at("h.lat").count());
  // Disjoint names union in.
  MetricsRegistry other;
  other.GetCounter("c.gamma").Add(2);
  a.Merge(other);
  EXPECT_EQ(a.counters().at("c.gamma").value, 2);
  EXPECT_EQ(a.counters().at("c.alpha").value, 10);
}

TEST(MetricsRegistry, StableReferencesAcrossInterning) {
  MetricsRegistry reg;
  Counter* first = &reg.GetCounter("a");
  for (int i = 0; i < 100; ++i) {
    std::string key = "k";  // built in two steps: GCC 12 -Wrestrict FP
    key += std::to_string(i);
    reg.GetCounter(key).Add();
  }
  EXPECT_EQ(first, &reg.GetCounter("a"));  // node-based map: no rehash moves
  first->Add(3);
  EXPECT_EQ(reg.counters().at("a").value, 3);
}

TEST(Export, FormatsCoverAllKinds) {
  const MetricsRegistry reg = MakeRegistry(13);
  const std::string json = ToJson(reg);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c.alpha\":13"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  const std::string jsonl = ToJsonLines(reg);
  EXPECT_NE(jsonl.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"histogram\""), std::string::npos);
  const std::string csv = ToCsv(reg);
  EXPECT_EQ(csv.rfind("kind,name,field,value\n", 0), 0u);

  // File-level serialisation prepends the build stamp, then carries the
  // raw export byte-for-byte.
  const std::string build_json = ToJson(GetBuildInfo());
  EXPECT_EQ(SerializeForPath(reg, "x.csv"),
            "kind,name,field,value\n"
            "build,git_sha,value," + GetBuildInfo().git_sha + "\n"
            "build,compiler,value," + GetBuildInfo().compiler + "\n"
            "build,build_type,value," + GetBuildInfo().build_type + "\n"
            "build,sanitizer,value," + GetBuildInfo().sanitizer + "\n" +
            csv.substr(std::string("kind,name,field,value\n").size()));
  EXPECT_EQ(SerializeForPath(reg, "x.jsonl"),
            "{\"kind\":\"build\",\"value\":" + build_json + "}\n" + jsonl);
  EXPECT_EQ(SerializeForPath(reg, "x.json"),
            "{\"build\":" + build_json + ',' + json.substr(1));
  EXPECT_EQ(SerializeForPath(reg, "x"), SerializeForPath(reg, "x.json"));
}

TEST(Export, EmptyRegistryIsStable) {
  const MetricsRegistry reg;
  EXPECT_EQ(ToJson(reg), ToJson(MetricsRegistry{}));
  EXPECT_NE(ToJson(reg).find("\"counters\":{}"), std::string::npos);
}


// ---------------------------------------------------------------------
// Determinism: metrics-enabled sweeps serialise to identical bytes for
// any thread count, across all three runners.

std::string SingleSweepJson(int threads) {
  SetParallelThreads(threads);
  SingleRunSpec spec;
  spec.scheme = SchemeKind::kTreeWorm;
  spec.multicast_size = 6;
  spec.topologies = 8;
  spec.samples_per_topology = 2;
  return ToJson(RunSingleMulticast(spec).metrics);
}

TEST(MetricsDeterminism, SingleRunnerThreadCountInvariant) {
  ThreadsGuard guard;
  const std::string serial = SingleSweepJson(1);
  EXPECT_FALSE(serial.empty());
  EXPECT_NE(serial.find("mcast.completed"), std::string::npos);
  EXPECT_EQ(serial, SingleSweepJson(2));
  EXPECT_EQ(serial, SingleSweepJson(8));
}

std::string LoadSweepJson(int threads) {
  SetParallelThreads(threads);
  LoadRunSpec spec;
  spec.scheme = SchemeKind::kNiKBinomial;
  spec.degree = 4;
  spec.effective_load = 0.15;
  spec.topologies = 5;
  spec.warmup = 2'000;
  spec.horizon = 20'000;
  return ToJson(RunLoadSweepPoint(spec).metrics);
}

TEST(MetricsDeterminism, LoadRunnerThreadCountInvariant) {
  ThreadsGuard guard;
  const std::string serial = LoadSweepJson(1);
  EXPECT_NE(serial.find("fabric.flits_sent"), std::string::npos);
  EXPECT_EQ(serial, LoadSweepJson(2));
  EXPECT_EQ(serial, LoadSweepJson(8));
}

std::string DsmSweepJson(int threads) {
  SetParallelThreads(threads);
  SimConfig cfg;
  DsmParams params;
  params.topologies = 3;
  params.horizon = 40'000;
  return ToJson(RunDsmInvalidation(cfg, SchemeKind::kPathWorm, params).metrics);
}

TEST(MetricsDeterminism, DsmRunnerThreadCountInvariant) {
  ThreadsGuard guard;
  const std::string serial = DsmSweepJson(1);
  EXPECT_NE(serial.find("host.cycles"), std::string::npos);
  EXPECT_EQ(serial, DsmSweepJson(8));
}

TEST(MetricsDeterminism, CollectMetricsOffYieldsEmptyRegistry) {
  SingleRunSpec spec;
  spec.multicast_size = 4;
  spec.topologies = 2;
  spec.samples_per_topology = 1;
  spec.collect_metrics = false;
  EXPECT_TRUE(RunSingleMulticast(spec).metrics.Empty());
  // ...and the result itself is unaffected by the toggle.
  SingleRunSpec on = spec;
  on.collect_metrics = true;
  EXPECT_EQ(RunSingleMulticast(spec).mean_latency,
            RunSingleMulticast(on).mean_latency);
}

// Pins the derived-quantile estimator (Histogram::Quantile and the
// reader-side BinnedQuantile share it) against exact sample sets, so
// the p50/p95/p99 columns in the metrics CSV and the ledger cannot
// drift silently.
TEST(Histogram, QuantilePinsExactSampleSets) {
  // All samples equal: the [min,max] clamp pins every quantile.
  Histogram same;
  for (int i = 0; i < 4; ++i) same.Add(5);
  for (double q : {0.0, 0.5, 0.95, 0.99, 1.0}) EXPECT_EQ(same.Quantile(q), 5.0);

  // {1, 2, 3}: bin [1,2) holds one sample, bin [2,4) two; rank
  // interpolation spreads the two-sample bin over [2, 3].
  Histogram h;
  h.Add(1);
  h.Add(2);
  h.Add(3);
  EXPECT_EQ(h.Quantile(0.0), 1.0);
  EXPECT_EQ(h.Quantile(0.5), 2.0);
  EXPECT_NEAR(h.Quantile(0.95), 2.9, 1e-12);
  EXPECT_EQ(h.Quantile(1.0), 3.0);

  // A single sample reads its bin midpoint, clamped to [min, max].
  Histogram one;
  one.Add(10);
  EXPECT_EQ(one.Quantile(0.5), 10.0);

  // The reader-side estimator agrees bin-for-bin with the live one.
  std::vector<BinSlice> slices;
  for (int b = 0; b < Histogram::kBins; ++b)
    if (h.bin(b) > 0)
      slices.push_back(
          {Histogram::BinLower(b), Histogram::BinUpper(b), h.bin(b)});
  for (double q : {0.25, 0.5, 0.75, 0.95})
    EXPECT_EQ(BinnedQuantile(slices, h.min(), h.max(), q), h.Quantile(q));
}

}  // namespace
}  // namespace irmc
