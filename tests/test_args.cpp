#include "common/args.hpp"

#include <gtest/gtest.h>

namespace irmc {
namespace {

Args ParseVec(std::initializer_list<const char*> argv) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), argv.begin(), argv.end());
  return Args::Parse(static_cast<int>(v.size()), v.data());
}

TEST(Args, CommandAndKeyValues) {
  const Args args = ParseVec({"single", "--size", "15", "--scheme",
                              "tree-worm"});
  EXPECT_EQ(args.command(), "single");
  EXPECT_EQ(args.GetInt("size", 0), 15);
  EXPECT_EQ(args.GetString("scheme", ""), "tree-worm");
}

TEST(Args, DefaultsWhenMissing) {
  const Args args = ParseVec({"load"});
  EXPECT_EQ(args.GetInt("degree", 8), 8);
  EXPECT_DOUBLE_EQ(args.GetDouble("load", 0.25), 0.25);
  EXPECT_EQ(args.GetString("scheme", "fallback"), "fallback");
  EXPECT_FALSE(args.GetFlag("dot"));
}

TEST(Args, FlagsHaveNoValue) {
  const Args args = ParseVec({"topology", "--dot", "--seed", "9"});
  EXPECT_TRUE(args.GetFlag("dot"));
  EXPECT_EQ(args.GetInt("seed", 0), 9);
}

TEST(Args, FlagBeforeAnotherOption) {
  const Args args = ParseVec({"topology", "--dot", "--save", "out.txt"});
  EXPECT_TRUE(args.GetFlag("dot"));
  EXPECT_EQ(args.GetString("save", ""), "out.txt");
}

TEST(Args, NoCommandIsEmpty) {
  const Args args = ParseVec({"--size", "3"});
  EXPECT_TRUE(args.command().empty());
  EXPECT_EQ(args.GetInt("size", 0), 3);
}

TEST(Args, MalformedNumbersFallBack) {
  const Args args = ParseVec({"single", "--size", "abc", "--load", "x.y"});
  EXPECT_EQ(args.GetInt("size", 7), 7);
  EXPECT_DOUBLE_EQ(args.GetDouble("load", 0.5), 0.5);
}

TEST(Args, NegativeAndFloatValues) {
  const Args args = ParseVec({"x", "--delta", "-3", "--ratio", "0.5"});
  EXPECT_EQ(args.GetInt("delta", 0), -3);
  EXPECT_DOUBLE_EQ(args.GetDouble("ratio", 0.0), 0.5);
}

TEST(Args, UnconsumedKeysDetected) {
  const Args args = ParseVec({"single", "--size", "3", "--typo", "1"});
  (void)args.GetInt("size", 0);
  const auto leftover = args.UnconsumedKeys();
  ASSERT_EQ(leftover.size(), 1u);
  EXPECT_EQ(leftover[0], "typo");
}

TEST(Args, StrayPositionalFlagged) {
  const Args args = ParseVec({"single", "oops"});
  EXPECT_FALSE(args.UnconsumedKeys().empty());
}

TEST(Args, GetChoiceAcceptsListedValueAndFallsBackWhenAbsent) {
  const Args args = ParseVec({"single", "--engine", "flit"});
  EXPECT_EQ(args.GetChoice("engine", "vct", {"vct", "flit"}), "flit");
  EXPECT_EQ(args.GetChoice("pattern", "uniform", {"uniform", "hotspot"}),
            "uniform");
}

TEST(ArgsDeathTest, GetChoiceRejectsTypoListingAcceptedValues) {
  const Args args = ParseVec({"single", "--engine", "filt"});
  EXPECT_EXIT(args.GetChoice("engine", "vct", {"vct", "flit"}),
              ::testing::ExitedWithCode(2),
              "invalid value for --engine: 'filt' \\(accepted: vct, flit\\)");
}

TEST(Args, HasChecksPresence) {
  const Args args = ParseVec({"x", "--a", "1"});
  EXPECT_TRUE(args.Has("a"));
  EXPECT_FALSE(args.Has("b"));
}

}  // namespace
}  // namespace irmc
