#include "topology/deadlock_check.hpp"

#include <gtest/gtest.h>

#include "topology/generator.hpp"

namespace irmc {
namespace {

class DeadlockSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(DeadlockSweep, UpDownRoutingIsProvablyDeadlockFree) {
  const auto [switches, seed] = GetParam();
  TopologySpec spec;
  spec.num_switches = switches;
  spec.num_hosts = 32;
  const System sys{GenerateTopology(spec, seed)};
  const DeadlockCheckResult r = CheckChannelDependencies(sys);
  EXPECT_TRUE(r.acyclic) << "cycle of length " << r.cycle.size();
  EXPECT_EQ(r.num_channels, 2 * sys.graph.NumLinks());
  EXPECT_GT(r.num_dependencies, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, DeadlockSweep,
    ::testing::Combine(::testing::Values(8, 16, 32),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u)));

TEST(DeadlockCheck, AllRootPoliciesStayAcyclic) {
  TopologySpec spec;
  spec.num_switches = 16;
  for (RootPolicy policy :
       {RootPolicy::kLowestId, RootPolicy::kMaxDegree,
        RootPolicy::kMinEccentricity}) {
    const System sys{GenerateTopology(spec, 11), policy};
    EXPECT_TRUE(CheckChannelDependencies(sys).acyclic)
        << ToString(policy);
  }
}

TEST(DeadlockCheck, RingTopology) {
  // A 4-switch ring: unrestricted minimal routing would have a cyclic
  // dependency; up*/down* breaks it at the root.
  Graph ring(4, 4);
  ring.AddLink(0, 0, 1, 0);
  ring.AddLink(1, 1, 2, 0);
  ring.AddLink(2, 1, 3, 0);
  ring.AddLink(3, 1, 0, 1);
  ring.AttachHost(0, 3);
  ring.AttachHost(2, 3);
  const System sys{std::move(ring)};
  const auto r = CheckChannelDependencies(sys);
  EXPECT_TRUE(r.acyclic);
  EXPECT_EQ(r.num_channels, 8);
}

TEST(DeadlockCheck, DependencyCountReasonable) {
  // Each directed channel can depend on at most (ports - 1) successors.
  TopologySpec spec;
  const System sys{GenerateTopology(spec, 17)};
  const auto r = CheckChannelDependencies(sys);
  EXPECT_LE(r.num_dependencies,
            r.num_channels * (sys.graph.ports_per_switch() - 1));
}

}  // namespace
}  // namespace irmc
