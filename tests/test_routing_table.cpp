#include "topology/routing_table.hpp"

#include <gtest/gtest.h>

#include "topology/system.hpp"

namespace irmc {
namespace {

class RoutingSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    TopologySpec spec;
    spec.num_switches = 16;
    spec.num_hosts = 32;
    sys_ = System::Build(spec, GetParam());
  }
  std::unique_ptr<System> sys_;
};

TEST_P(RoutingSweep, EveryPairReachable) {
  const auto& rt = sys_->routing;
  for (SwitchId a = 0; a < sys_->num_switches(); ++a)
    for (SwitchId b = 0; b < sys_->num_switches(); ++b) {
      EXPECT_GE(rt.Distance(a, b), a == b ? 0 : 1);
      if (a == b) {
        EXPECT_EQ(rt.Distance(a, b), 0);
      }
    }
}

TEST_P(RoutingSweep, DownDistanceConsistency) {
  const auto& rt = sys_->routing;
  const SwitchId root = sys_->tree.root();
  for (SwitchId b = 0; b < sys_->num_switches(); ++b) {
    // The root down-reaches everything (tree links from the root are all
    // down), and the legal distance never exceeds the down distance.
    EXPECT_GE(rt.DownDistance(root, b), 0);
    EXPECT_EQ(rt.DownDistance(b, b), 0);  // self down-distance is zero
  }
  for (SwitchId a = 0; a < sys_->num_switches(); ++a)
    for (SwitchId b = 0; b < sys_->num_switches(); ++b) {
      const int dd = rt.DownDistance(a, b);
      if (dd >= 0) {
        EXPECT_LE(rt.Distance(a, b), dd);
      }
    }
}

TEST_P(RoutingSweep, CandidatesAdvanceTowardDestination) {
  const auto& rt = sys_->routing;
  const auto& g = sys_->graph;
  for (SwitchId a = 0; a < sys_->num_switches(); ++a) {
    for (SwitchId b = 0; b < sys_->num_switches(); ++b) {
      if (a == b) {
        EXPECT_TRUE(rt.Candidates(a, b, RoutePhase::kUpAllowed).empty());
        continue;
      }
      const auto& cand = rt.Candidates(a, b, RoutePhase::kUpAllowed);
      ASSERT_FALSE(cand.empty());
      for (PortId p : cand) {
        const SwitchId t = g.port(a, p).peer_switch;
        const RoutePhase next =
            rt.NextPhase(a, p, RoutePhase::kUpAllowed);
        // Shortest-path property: remaining distance drops by one.
        const int rem = next == RoutePhase::kUpAllowed
                            ? rt.Distance(t, b)
                            : rt.DownDistance(t, b);
        ASSERT_GE(rem, 0);
        EXPECT_EQ(rem + 1, rt.Distance(a, b));
      }
    }
  }
}

TEST_P(RoutingSweep, GreedyWalksReachDestinationLegally) {
  const auto& rt = sys_->routing;
  const auto& g = sys_->graph;
  for (SwitchId a = 0; a < sys_->num_switches(); ++a) {
    for (SwitchId b = 0; b < sys_->num_switches(); ++b) {
      if (a == b) continue;
      SwitchId here = a;
      RoutePhase phase = RoutePhase::kUpAllowed;
      std::vector<PortId> hops;
      int guard = 0;
      while (here != b) {
        ASSERT_LT(++guard, 64);
        const auto& cand = rt.Candidates(here, b, phase);
        ASSERT_FALSE(cand.empty());
        const PortId p = cand.front();
        hops.push_back(p);
        phase = rt.NextPhase(here, p, phase);
        here = g.port(here, p).peer_switch;
      }
      EXPECT_EQ(static_cast<int>(hops.size()), rt.Distance(a, b));
      EXPECT_TRUE(rt.IsLegalRoute(a, hops));
    }
  }
}

TEST_P(RoutingSweep, DownPhaseCandidatesAreDownOnly) {
  const auto& rt = sys_->routing;
  const auto& ud = sys_->updown;
  for (SwitchId a = 0; a < sys_->num_switches(); ++a)
    for (SwitchId b = 0; b < sys_->num_switches(); ++b) {
      if (a == b) continue;
      for (PortId p : rt.Candidates(a, b, RoutePhase::kDownOnly))
        EXPECT_TRUE(ud.IsDown(a, p));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(RoutingTable, IsLegalRouteRejectsUpAfterDown) {
  // Line 0-1-2: route 2 ->(up) 1 ->(up) 0 is legal; 1->(down)2 then
  // 2->(up)1 is not.
  Graph g(3, 4);
  g.AddLink(0, 0, 1, 0);
  g.AddLink(1, 1, 2, 0);
  g.AttachHost(0, 3);
  g.AttachHost(1, 3);
  g.AttachHost(2, 3);
  const BfsTree t(g);
  const UpDownOrientation ud(g, t);
  const RoutingTable rt(g, ud);
  EXPECT_TRUE(rt.IsLegalRoute(2, {0, 0}));      // 2 up 1 up 0
  EXPECT_TRUE(rt.IsLegalRoute(0, {0, 1}));      // 0 down 1 down 2
  EXPECT_FALSE(rt.IsLegalRoute(1, {1, 0}));     // down to 2 then up to 1
  EXPECT_FALSE(rt.IsLegalRoute(0, {3}));        // host port is not a route
  EXPECT_FALSE(rt.IsLegalRoute(0, {kInvalidPort}));
}

TEST(RoutingTable, LineDistances) {
  Graph g(3, 4);
  g.AddLink(0, 0, 1, 0);
  g.AddLink(1, 1, 2, 0);
  const BfsTree t(g);
  const UpDownOrientation ud(g, t);
  const RoutingTable rt(g, ud);
  EXPECT_EQ(rt.Distance(0, 2), 2);
  EXPECT_EQ(rt.Distance(2, 0), 2);
  EXPECT_EQ(rt.DownDistance(0, 2), 2);   // all-down from root
  EXPECT_EQ(rt.DownDistance(2, 0), -1);  // cannot go down toward root
}

}  // namespace
}  // namespace irmc
