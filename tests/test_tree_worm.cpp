#include "mcast/tree_worm.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/single_runner.hpp"

#include "topology/system.hpp"

namespace irmc {
namespace {

TEST(TreeWormPlan, CarriesDestinationsVerbatim) {
  const auto sys = System::Build({}, 21);
  TreeWormScheme scheme;
  const std::vector<NodeId> dests{1, 5, 9, 30};
  const McastPlan plan = scheme.Plan(*sys, 0, dests, {}, {});
  EXPECT_EQ(plan.scheme, SchemeKind::kTreeWorm);
  EXPECT_EQ(plan.root, 0);
  EXPECT_EQ(plan.dests, dests);
  EXPECT_TRUE(plan.worms.empty());
}

TEST(TreeWormHeader, SizeMatchesPaperEncoding) {
  // Header is an N-bit string, one bit per node (plus the routing tag).
  HeaderSizing sizing;
  EXPECT_EQ(sizing.TreeWormFlits(32), sizing.unicast_flits + 4);
  EXPECT_EQ(sizing.TreeWormFlits(8), sizing.unicast_flits + 1);
  EXPECT_EQ(sizing.TreeWormFlits(256), sizing.unicast_flits + 32);
  EXPECT_EQ(sizing.TreeWormFlits(257), sizing.unicast_flits + 33);
}

TEST(PathHeader, FieldSizeMatchesPaperEncoding) {
  // One node-ID flit plus a ports-wide bit string per replication switch.
  HeaderSizing sizing;
  EXPECT_EQ(sizing.PathFieldFlits(8), 2);
  EXPECT_EQ(sizing.PathFieldFlits(16), 3);
}


TEST(TreeWormChunked, SpanZeroKeepsSingleWorm) {
  const auto sys = System::Build({}, 21);
  TreeWormScheme scheme;
  const McastPlan plan = scheme.Plan(*sys, 0, {1, 5, 30}, {}, {});
  EXPECT_TRUE(plan.tree_regions.empty());
}

TEST(TreeWormChunked, RegionsPartitionDestinations) {
  const auto sys = System::Build({}, 21);
  TreeWormScheme scheme;
  scheme.max_region_span = 8;
  const std::vector<NodeId> dests{1, 3, 7, 9, 17, 20, 30};
  const McastPlan plan = scheme.Plan(*sys, 0, dests, {}, {});
  ASSERT_FALSE(plan.tree_regions.empty());
  std::vector<NodeId> merged;
  for (const auto& region : plan.tree_regions) {
    ASSERT_FALSE(region.empty());
    // Window constraint: span of IDs within a region < cap.
    EXPECT_LT(region.back() - region.front(), 8);
    merged.insert(merged.end(), region.begin(), region.end());
  }
  std::sort(merged.begin(), merged.end());
  auto expected = dests;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(merged, expected);
  EXPECT_EQ(plan.tree_region_header_flits.size(),
            plan.tree_regions.size());
}

TEST(TreeWormChunked, HeaderSizeIndependentOfSystemSize) {
  HeaderSizing sizing;
  TopologySpec big;
  big.num_hosts = 256;
  big.num_switches = 64;
  const auto sys = System::Build(big, 3);
  TreeWormScheme scheme;
  scheme.max_region_span = 32;
  const McastPlan plan =
      scheme.Plan(*sys, 0, {10, 20, 200, 250}, {}, sizing);
  for (int flits : plan.tree_region_header_flits)
    EXPECT_EQ(flits, sizing.unicast_flits + 1 + 4);  // offset + 32 bits
  // The paper's single worm at this size would carry 32 bit-string
  // flits.
  EXPECT_EQ(sizing.TreeWormFlits(256), sizing.unicast_flits + 32);
}

TEST(TreeWormChunked, ChunkedPlanDeliversExactlyOnce) {
  const auto sys = System::Build({}, 21);
  SimConfig cfg;
  TreeWormScheme scheme;
  scheme.max_region_span = 8;
  std::vector<NodeId> dests;
  for (NodeId n = 1; n < 32; n += 2) dests.push_back(n);
  const auto r = PlayOnce(
      *sys, cfg, scheme.Plan(*sys, 0, dests, cfg.message, cfg.headers));
  EXPECT_EQ(r.deliveries.size(), dests.size());
}

TEST(TreeWormChunked, MultiPacketChunkedStillDelivers) {
  const auto sys = System::Build({}, 21);
  SimConfig cfg;
  cfg.message.num_packets = 3;
  TreeWormScheme scheme;
  scheme.max_region_span = 16;
  const std::vector<NodeId> dests{2, 9, 18, 27};
  const auto r = PlayOnce(
      *sys, cfg, scheme.Plan(*sys, 0, dests, cfg.message, cfg.headers));
  EXPECT_EQ(r.deliveries.size(), dests.size());
}

}  // namespace
}  // namespace irmc
